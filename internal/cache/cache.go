// Package cache implements the simulated memory hierarchy used by the bound
// phase: set-associative caches with LRU or random replacement, MESI
// coherence with in-cache directories over inclusive hierarchies, multi-bank
// shared caches, and the per-cache locking scheme that lets the parallel
// bound phase access the shared hierarchy from many host threads at once.
//
// During the bound phase every access is served with zero-load (uncontended)
// latencies, and each level a request touches appends a Hop to the request's
// trace. Package boundweave turns those hop lists into weave-phase events
// that model contention (bank ports, MSHRs, DRAM timing).
//
// Locking follows the paper's discipline for accesses that travel both up
// (fetches, writebacks) and down (invalidations, downgrades) the hierarchy: a
// cache never holds its own lock while calling up into its parent, and only
// takes child locks while handling a downward invalidation. Lock ordering is
// therefore always parent-before-child and the scheme is deadlock-free. The
// only race this admits is the one the paper accepts: two near-simultaneous
// accesses to the same line may be serialized in either order.
//
// Within one cache, locking is striped by set: concurrent accesses to
// different sets of a shared multi-bank cache proceed in parallel, and
// statistics are kept in atomic counters so no global lock serializes the
// hot path. Set arrays are allocated lazily, the first time a set is
// touched, so building a thousand-core chip with hundreds of megabytes of
// simulated cache costs memory only for the sets the workload actually uses.
package cache

import (
	"fmt"
	"sync"

	"zsim/internal/arena"
	"zsim/internal/stats"
)

// LineSize is the cache line size in bytes (64 B, as in the validated
// Westmere configuration).
const LineSize = 64

// LineAddr converts a byte address to a line address.
func LineAddr(addr uint64) uint64 { return addr >> 6 }

// State is a MESI coherence state.
type State uint8

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the one-letter MESI name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("?%d", uint8(s))
	}
}

// HopKind classifies an entry in a request's hierarchy trace.
type HopKind uint8

// Hop kinds recorded during bound-phase accesses.
const (
	HopHit    HopKind = iota // request hit at this level
	HopMiss                  // request missed at this level and continued up
	HopMem                   // request was served by a memory controller
	HopWB                    // a dirty eviction generated a writeback at this level
	HopInval                 // this access caused an invalidation in another cache
	HopNet                   // the request crossed the NoC from node Src to node Dst
	HopNetMem                // the request crossed node Src's memory-egress link
)

// String returns a short name for the hop kind.
func (k HopKind) String() string {
	switch k {
	case HopHit:
		return "hit"
	case HopMiss:
		return "miss"
	case HopMem:
		return "mem"
	case HopWB:
		return "wback"
	case HopInval:
		return "inval"
	case HopNet:
		return "net"
	case HopNetMem:
		return "netmem"
	default:
		return fmt.Sprintf("hop(%d)", uint8(k))
	}
}

// Hop records one level's handling of a request; the weave phase turns hops
// into events with the component's contention model.
type Hop struct {
	Comp int // global component ID (assigned by the system builder); -1 for network hops
	Kind HopKind
	// Src and Dst are the topology nodes of a network hop (HopNet: the full
	// route from Src to Dst; HopNetMem: Src's memory-egress link). They are
	// meaningless for other kinds.
	Src, Dst int16
	Line     uint64 // line address of the access (used by DRAM bank mapping)
	Cycle    uint64 // zero-load cycle at which this level starts handling the request
	Latency  uint32 // zero-load latency contributed by this level
}

// Request is a memory access travelling up the hierarchy. Levels mutate Cycle
// as the request progresses and append to Hops when tracing is enabled. A
// single Request value travels the whole hierarchy: levels that forward it
// upward (for fetches and writebacks) mutate it in place and restore their
// caller's fields afterwards, so a full miss path performs no allocation.
// Cores keep one reusable Request per core and one recycled hop buffer, which
// makes the steady-state access path allocation-free.
type Request struct {
	LineAddr uint64
	Write    bool
	CoreID   int    // issuing core, used for profiling and domain assignment
	Cycle    uint64 // cycle the request arrives at the level being accessed
	// Hops accumulates the levels this request touched; nil disables tracing
	// (set by the bound phase only for accesses it wants weave events for).
	Hops []Hop
	// RecordHops enables appending to Hops.
	RecordHops bool
	// Prof, when non-nil, receives every (line, write) access for the
	// path-altering-interference profiler of Figure 2.
	Prof AccessObserver
	// FillState is set by the serving level to tell the requester which MESI
	// state to install the line in (Shared when other children also hold the
	// line, Exclusive/Modified otherwise). Terminal levels (memory) leave it
	// untouched; callers initialize it to Exclusive before forwarding.
	FillState State
	// childIdx is the directory index of the child cache that issued this
	// request into its parent; it is set by the child when forwarding a miss
	// upward and is meaningless for core-issued requests into L1s.
	childIdx int
}

func (r *Request) addHop(comp int, kind HopKind, cycle uint64, lat uint32) {
	if r.RecordHops {
		r.Hops = append(r.Hops, Hop{Comp: comp, Kind: kind, Line: r.LineAddr, Cycle: cycle, Latency: lat})
	}
}

// addNetHop records a network traversal from topology node src to dst (the
// weave phase expands it along the route into per-router events). Network
// hops carry no component ID; they never mark a trace as weave-retimed by
// themselves (the bank or controller hop that follows does).
func (r *Request) addNetHop(kind HopKind, src, dst int, cycle uint64, lat uint32) {
	if r.RecordHops {
		r.Hops = append(r.Hops, Hop{Comp: -1, Kind: kind, Src: int16(src), Dst: int16(dst),
			Line: r.LineAddr, Cycle: cycle, Latency: lat})
	}
}

// AccessObserver observes line-granularity accesses (used by the interference
// profiler and by tests).
type AccessObserver interface {
	ObserveAccess(lineAddr uint64, write bool, coreID int, cycle uint64)
}

// Level is anything that can serve a request from below: a cache, a banked
// cache router, or a memory controller.
type Level interface {
	// Access serves the request and returns the cycle at which the requested
	// line is available at the requester, assuming zero load.
	Access(req *Request) uint64
	// Name returns the component's name for stats and debugging.
	Name() string
}

// line is one cache line's tag, coherence state, directory info and
// replacement metadata. The fields are packed so a line takes 32 bytes (two
// lines per host cache line).
type line struct {
	tag      uint64 // line address
	lastUse  uint64 // replacement timestamp
	sharers  uint64 // bitmask of children holding the line (directory)
	state    State
	childMod bool // some child may hold the line modified
}

// stripe is one lock stripe of a cache: a mutex protecting the sets
// congruent to its index mod nStripes (set&stripeMask), plus the per-stripe
// replacement clock and random-replacement state those sets use. Stripes are
// padded to a host cache line so neighbouring stripes don't false-share.
type stripe struct {
	mu    sync.Mutex
	useCt uint64 // replacement clock (compared within one set only)
	rng   uint64 // xorshift state for random replacement
	_     [40]byte
}

// maxStripes bounds the number of lock stripes per cache.
const maxStripes = 64

// Config describes one cache.
type Config struct {
	// Name names the cache. Builders creating thousands of identically-shaped
	// caches can instead set NamePrefix + NameIdx, and the "<prefix>-<idx>"
	// name is formatted lazily when first asked for, so construction performs
	// no string allocation.
	Name       string
	NamePrefix string
	NameIdx    int
	SizeKB     int
	Ways       int
	Latency    uint32 // zero-load access latency in cycles
	// MSHRs bounds outstanding misses in the weave-phase contention model
	// (the bound phase ignores it).
	MSHRs int
	// NumBanks > 1 creates a banked cache (use NewBanked).
	NumBanks int
	// RandomRepl selects random replacement instead of LRU.
	RandomRepl bool
}

// Cache is a single set-associative cache (or one bank of a banked cache).
type Cache struct {
	name    string
	prefix  string
	nameIdx int
	compID  int
	sets    int
	ways    int
	latency uint32
	mshrs   int
	random  bool

	// setArr[s] holds set s's ways; nil until the set is first touched.
	setArr     [][]line
	stripes    []stripe
	stripeMask int

	parent   Level
	children []*Cache // for directory-driven invalidations
	childIdx int      // this cache's index within its parent's children

	// Statistics (atomic: the striped hot path updates them from many host
	// threads without a shared lock).
	Hits        *stats.AtomicCounter
	Misses      *stats.AtomicCounter
	Evictions   *stats.AtomicCounter
	Writebacks  *stats.AtomicCounter
	Invals      *stats.AtomicCounter
	UpgradeMiss *stats.AtomicCounter
}

// New creates a cache from the config, registering its statistics under the
// given registry. compID is the global component ID used in weave traces.
// When the registry tree carries a construction arena, the cache object, its
// set table, its lock stripes and (lazily) its line arrays are all carved
// from that arena.
func New(cfg Config, compID int, reg *stats.Registry) *Cache {
	ways := cfg.Ways
	if ways < 1 {
		ways = 1
	}
	lines := cfg.SizeKB * 1024 / LineSize
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	if reg == nil {
		name := cfg.Name
		if name == "" && cfg.NamePrefix != "" {
			name = fmt.Sprintf("%s-%d", cfg.NamePrefix, cfg.NameIdx)
		}
		reg = stats.NewRegistry(name)
	}
	a := reg.Arena()
	nStripes := 1
	for nStripes*2 <= sets && nStripes < maxStripes {
		nStripes *= 2
	}
	c := arena.One[Cache](a)
	*c = Cache{
		name:       cfg.Name,
		prefix:     cfg.NamePrefix,
		nameIdx:    cfg.NameIdx,
		compID:     compID,
		sets:       sets,
		ways:       ways,
		latency:    cfg.Latency,
		mshrs:      cfg.MSHRs,
		random:     cfg.RandomRepl,
		setArr:     arena.Take[[]line](a, sets),
		stripes:    arena.Take[stripe](a, nStripes),
		stripeMask: nStripes - 1,

		Hits:        reg.Atomic("hits", "accesses that hit"),
		Misses:      reg.Atomic("misses", "accesses that missed"),
		Evictions:   reg.Atomic("evictions", "lines evicted"),
		Writebacks:  reg.Atomic("writebacks", "dirty lines written back"),
		Invals:      reg.Atomic("invalidations", "lines invalidated by coherence"),
		UpgradeMiss: reg.Atomic("upgradeMisses", "write hits to Shared lines requiring upgrade"),
	}
	for i := range c.stripes {
		c.stripes[i].rng = uint64(compID)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9 + 0xdeadbeef
	}
	return c
}

// Reset restores the cache to its just-constructed state for warm reuse:
// every touched set is cleared back to all-Invalid zero lines (lazily
// allocated way arrays are kept — a zeroed array behaves exactly like the
// nil array a fresh cache starts with), and each stripe's replacement clock
// and random-replacement RNG are re-seeded with the construction formula.
// Statistics counters are registry-owned and zeroed by Registry.Reset.
// Callers must be quiescent (no concurrent accesses).
func (c *Cache) Reset() {
	for _, s := range c.setArr {
		if s != nil {
			clear(s)
		}
	}
	for i := range c.stripes {
		c.stripes[i].useCt = 0
		c.stripes[i].rng = uint64(c.compID)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9 + 0xdeadbeef
	}
}

// Name returns the cache's name, formatting prefix-indexed names on demand.
// It never writes cache state (no lazy memoization), so it is safe to call
// concurrently with accesses; Name is off the hot path.
func (c *Cache) Name() string {
	if c.name == "" && c.prefix != "" {
		return fmt.Sprintf("%s-%d", c.prefix, c.nameIdx)
	}
	return c.name
}

// CompID returns the cache's global component ID.
func (c *Cache) CompID() int { return c.compID }

// Latency returns the cache's zero-load access latency.
func (c *Cache) Latency() uint32 { return c.latency }

// MSHRs returns the configured number of MSHRs (for the weave model).
func (c *Cache) MSHRs() int { return c.mshrs }

// SetParent links the cache to its parent level.
func (c *Cache) SetParent(p Level) { c.parent = p }

// AddChild registers a child cache for directory tracking and returns the
// child's index. Panics if more than 64 children are added (the directory
// sharer set is a 64-bit mask).
func (c *Cache) AddChild(child *Cache) int {
	if len(c.children) >= 64 {
		panic("cache: more than 64 children per cache are not supported")
	}
	idx := len(c.children)
	c.children = append(c.children, child)
	child.childIdx = idx
	return idx
}

// NumLines returns the cache's capacity in lines.
func (c *Cache) NumLines() int { return c.sets * c.ways }

// NumStripes returns the number of lock stripes (test/diagnostic helper).
func (c *Cache) NumStripes() int { return len(c.stripes) }

func (c *Cache) setOf(lineAddr uint64) int {
	// Hash the line address so that strided accesses spread across sets even
	// when the stride is a multiple of the set count (the "hashed" L3 in the
	// validated configuration).
	h := lineAddr * 0x9e3779b97f4a7c15
	return int(h % uint64(c.sets))
}

// stripeOf returns the lock stripe covering the set.
func (c *Cache) stripeOf(set int) *stripe { return &c.stripes[set&c.stripeMask] }

// setLines returns set's way array, allocating it on first touch. The lazy
// allocation deliberately uses the heap, not the construction arena: first
// touches happen on the parallel bound phase's hot path, and funneling every
// worker through the arena's shared mutex would serialize warm-up on
// many-core hosts. Caller must hold the set's stripe lock.
func (c *Cache) setLines(set int) []line {
	s := c.setArr[set]
	if s == nil {
		s = make([]line, c.ways)
		c.setArr[set] = s
	}
	return s
}

// findWay returns the way index of tag in the set's lines, or -1. A nil
// (never-touched) set reports -1.
func findWay(lines []line, tag uint64) int {
	for w := range lines {
		if lines[w].state != Invalid && lines[w].tag == tag {
			return w
		}
	}
	return -1
}

// victimWay picks a victim way in the set. Caller must hold the stripe lock.
func (c *Cache) victimWay(st *stripe, lines []line) int {
	// Prefer an invalid way.
	for w := range lines {
		if lines[w].state == Invalid {
			return w
		}
	}
	if c.random {
		st.rng ^= st.rng << 13
		st.rng ^= st.rng >> 7
		st.rng ^= st.rng << 17
		return int(st.rng % uint64(c.ways))
	}
	// LRU.
	best, bestUse := 0, lines[0].lastUse
	for w := 1; w < len(lines); w++ {
		if lines[w].lastUse < bestUse {
			best, bestUse = w, lines[w].lastUse
		}
	}
	return best
}

// Access serves a request from a child (or from a core, for L1s).
//
// The protocol is inclusive MESI: a hit with sufficient permissions is served
// locally; a write hit on a Shared line upgrades via the parent; a miss
// evicts a victim (invalidating it in children and writing it back if dirty)
// and fetches the line from the parent. Directory state tracks which children
// hold the line so writes can invalidate other sharers.
func (c *Cache) Access(req *Request) uint64 {
	if req.Prof != nil {
		// Only the first level observes the access (profiling is about the
		// access stream, not about each hierarchy level).
		req.Prof.ObserveAccess(req.LineAddr, req.Write, req.CoreID, req.Cycle)
		req.Prof = nil
	}

	set := c.setOf(req.LineAddr)
	st := c.stripeOf(set)
	st.mu.Lock()
	st.useCt++
	now := st.useCt
	lines := c.setLines(set)
	way := findWay(lines, req.LineAddr)
	availCycle := req.Cycle + uint64(c.latency)

	if way >= 0 {
		l := &lines[way]
		l.lastUse = now
		if !req.Write || l.state == Exclusive || l.state == Modified {
			// Plain hit.
			if req.Write {
				// Write hit with sufficient permission: invalidate any other
				// children holding the line, then grant Modified.
				if l.sharers != 0 {
					c.invalidateChildrenLocked(req, req.LineAddr, l)
				}
				l.state = Modified
				req.FillState = Modified
			} else {
				// Read hit. If another child may hold the line Exclusive or
				// Modified, downgrade it to Shared so the data is coherent,
				// and grant Shared when the line ends up shared by several
				// children.
				otherSharers := l.sharers
				if req.childIdx >= 0 && len(c.children) > 0 {
					otherSharers &^= 1 << uint(req.childIdx)
				}
				if l.childMod && otherSharers != 0 {
					if c.downgradeChildrenLocked(req, req.LineAddr, otherSharers) {
						l.state = Modified
					}
					l.childMod = false
				}
				if otherSharers != 0 || l.state == Shared {
					req.FillState = Shared
				} else {
					req.FillState = Exclusive
				}
			}
			c.markChild(l, req)
			st.mu.Unlock()
			c.Hits.Inc()
			req.addHop(c.compID, HopHit, req.Cycle, c.latency)
			return availCycle
		}
		// Write hit on Shared: upgrade through the parent (invalidates other
		// copies system-wide). Treated as a miss for timing purposes.
		l.state = Invalid // re-installed below after the parent access
		st.mu.Unlock()
		c.UpgradeMiss.Inc()
		c.Misses.Inc()
		return c.fetchAndInstall(req, availCycle)
	}

	// Miss: pick a victim and evict it, then fetch from the parent.
	vw := c.victimWay(st, lines)
	victim := lines[vw]
	lines[vw].state = Invalid
	st.mu.Unlock()
	c.Misses.Inc()

	if victim.state != Invalid {
		c.Evictions.Inc()
		c.evictLine(req, victim)
	}
	return c.fetchAndInstall(req, availCycle)
}

// fetchAndInstall completes a miss: it forwards the request to the parent
// (without holding any of our locks), then installs the line. It returns the
// zero-load cycle at which the line is available to the requester. The
// request is forwarded in place — the parent mutates it — and the
// caller-side fields are restored afterwards, so the miss path allocates
// nothing.
func (c *Cache) fetchAndInstall(req *Request, localAvail uint64) uint64 {
	req.addHop(c.compID, HopMiss, req.Cycle, c.latency)
	var fillCycle uint64
	grant := Exclusive
	if c.parent != nil {
		savedCycle, savedChild := req.Cycle, req.childIdx
		req.Cycle = localAvail // request leaves this level after its lookup latency
		req.childIdx = c.childIdx
		req.FillState = Exclusive
		fillCycle = c.parent.Access(req)
		grant = req.FillState
		req.Cycle, req.childIdx = savedCycle, savedChild
	} else {
		// No parent: act as if backed by an ideal memory with no extra delay.
		fillCycle = localAvail
	}

	// Install the line.
	set := c.setOf(req.LineAddr)
	st := c.stripeOf(set)
	st.mu.Lock()
	st.useCt++
	lines := c.setLines(set)
	way := findWay(lines, req.LineAddr)
	if way < 0 {
		way = c.victimWay(st, lines)
		victim := lines[way]
		if victim.state != Invalid {
			lines[way].state = Invalid
			st.mu.Unlock()
			c.Evictions.Inc()
			c.evictLine(req, victim)
			st.mu.Lock()
			st.useCt++
			// Re-lookup: the set may have changed while unlocked.
			way = findWay(lines, req.LineAddr)
			if way < 0 {
				way = c.victimWay(st, lines)
				lines[way].state = Invalid
			}
		}
	}
	l := &lines[way]
	l.tag = req.LineAddr
	l.lastUse = st.useCt
	l.sharers = 0
	l.childMod = false
	if req.Write {
		l.state = Modified
	} else {
		l.state = grant
	}
	req.FillState = l.state
	c.markChild(l, req)
	st.mu.Unlock()
	return fillCycle
}

// markChild records, in the directory, that the requesting child now holds
// the line. For L1 caches (no children), the requester is the core and no
// directory state is needed. Caller must hold the set's stripe lock.
func (c *Cache) markChild(l *line, req *Request) {
	if len(c.children) == 0 {
		return
	}
	if req.childIdx >= 0 && req.childIdx < 64 {
		l.sharers |= 1 << uint(req.childIdx)
		// A child holding the line Exclusive can silently upgrade it to
		// Modified, so both write grants and Exclusive grants mark the line
		// as possibly dirty in a child.
		if req.Write || req.FillState == Exclusive || req.FillState == Modified {
			l.childMod = true
		}
	}
}

// evictLine handles the eviction of a victim line: invalidate it in children
// (inclusive hierarchy) and write it back to the parent if dirty. The
// writeback reuses the in-flight request (mutate, forward, restore) instead
// of allocating a new one.
func (c *Cache) evictLine(req *Request, victim line) {
	// Invalidate children copies.
	if victim.sharers != 0 {
		dirtyInChild := c.invalidateChildren(victim.tag, victim.sharers)
		if dirtyInChild {
			victim.state = Modified
		}
	}
	if victim.state == Modified {
		c.Writebacks.Inc()
		req.addHop(c.compID, HopWB, req.Cycle, 0)
		if c.parent != nil {
			savedLine, savedWrite := req.LineAddr, req.Write
			savedFill, savedChild := req.FillState, req.childIdx
			req.LineAddr = victim.tag
			req.Write = true
			req.childIdx = c.childIdx
			c.parent.Access(req)
			req.LineAddr, req.Write = savedLine, savedWrite
			req.FillState, req.childIdx = savedFill, savedChild
		}
	}
}

// invalidateChildren invalidates the line in every child in the sharer mask
// and reports whether any child held it modified. No locks are held on c.
func (c *Cache) invalidateChildren(lineAddr uint64, sharers uint64) bool {
	dirty := false
	for i, ch := range c.children {
		if sharers&(1<<uint(i)) == 0 {
			continue
		}
		if ch.Invalidate(lineAddr) {
			dirty = true
		}
	}
	return dirty
}

// invalidateChildrenLocked is used on a write hit to invalidate other
// sharers. Caller holds the set's stripe lock; child locks are acquired
// inside Invalidate (parent-before-child ordering, no deadlock). The
// requester's own copy is preserved by clearing its bit afterwards.
func (c *Cache) invalidateChildrenLocked(req *Request, lineAddr uint64, l *line) {
	sharers := l.sharers
	if req.childIdx >= 0 && len(c.children) > 0 {
		sharers &^= 1 << uint(req.childIdx)
	}
	if sharers == 0 {
		return
	}
	for i, ch := range c.children {
		if sharers&(1<<uint(i)) == 0 {
			continue
		}
		ch.Invalidate(lineAddr)
		req.addHop(ch.compID, HopInval, req.Cycle, 0)
	}
	l.sharers &^= sharers
	l.childMod = false
}

// downgradeChildrenLocked downgrades the given children sharers to Shared and
// reports whether any of them held the line modified. Caller holds the set's
// stripe lock.
func (c *Cache) downgradeChildrenLocked(req *Request, lineAddr uint64, sharers uint64) bool {
	dirty := false
	for i, ch := range c.children {
		if sharers&(1<<uint(i)) == 0 {
			continue
		}
		if ch.Downgrade(lineAddr) {
			dirty = true
		}
		req.addHop(ch.compID, HopInval, req.Cycle, 0)
	}
	return dirty
}

// Downgrade demotes the line to Shared in this cache and its children,
// returning true if any copy was Modified (i.e., a writeback of fresh data is
// implied).
func (c *Cache) Downgrade(lineAddr uint64) bool {
	set := c.setOf(lineAddr)
	st := c.stripeOf(set)
	st.mu.Lock()
	lines := c.setArr[set]
	way := findWay(lines, lineAddr)
	if way < 0 {
		st.mu.Unlock()
		return false
	}
	l := &lines[way]
	dirty := l.state == Modified
	if l.state == Modified || l.state == Exclusive {
		l.state = Shared
	}
	sharers := l.sharers
	childMod := l.childMod
	l.childMod = false
	st.mu.Unlock()

	if childMod && sharers != 0 {
		for i, ch := range c.children {
			if sharers&(1<<uint(i)) == 0 {
				continue
			}
			if ch.Downgrade(lineAddr) {
				dirty = true
			}
		}
	}
	return dirty
}

// Invalidate removes the line from this cache (and, recursively, from its
// children), returning true if the line (or any child copy) was modified.
// It is the downward path of the coherence protocol.
func (c *Cache) Invalidate(lineAddr uint64) bool {
	set := c.setOf(lineAddr)
	st := c.stripeOf(set)
	st.mu.Lock()
	lines := c.setArr[set]
	way := findWay(lines, lineAddr)
	if way < 0 {
		st.mu.Unlock()
		return false
	}
	l := lines[way]
	lines[way].state = Invalid
	st.mu.Unlock()
	c.Invals.Inc()

	dirty := l.state == Modified
	if l.sharers != 0 {
		if c.invalidateChildren(lineAddr, l.sharers) {
			dirty = true
		}
	}
	return dirty
}

// Contains reports whether the cache currently holds the line (test helper).
func (c *Cache) Contains(lineAddr uint64) bool {
	set := c.setOf(lineAddr)
	st := c.stripeOf(set)
	st.mu.Lock()
	defer st.mu.Unlock()
	return findWay(c.setArr[set], lineAddr) >= 0
}

// StateOf returns the MESI state of the line (Invalid if absent).
func (c *Cache) StateOf(lineAddr uint64) State {
	set := c.setOf(lineAddr)
	st := c.stripeOf(set)
	st.mu.Lock()
	defer st.mu.Unlock()
	lines := c.setArr[set]
	way := findWay(lines, lineAddr)
	if way < 0 {
		return Invalid
	}
	return lines[way].state
}
