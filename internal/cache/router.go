package cache

// Routers connect hierarchy levels that are physically distributed: a banked
// shared cache (the L3 of the validated Westmere configuration and of the
// tiled thousand-core chip) and the set of memory controllers. Routers select
// the destination bank or controller by hashing the line address, and add the
// network's zero-load latency for the hop, which is how the bound phase
// accounts for the NoC (the paper leaves weave-phase NoC models to future
// work and argues zero-load latencies capture most of the impact for
// well-provisioned networks).

// Banked routes requests to one of several banks by hashing the line
// address. It implements Level and is used as the parent of the private cache
// levels.
type Banked struct {
	name  string
	banks []*Cache
	// netLatency is the zero-load network latency (cycles) added to every
	// access that crosses the interconnect to reach a bank.
	netLatency uint32
	// distanceFn, if non-nil, returns the extra per-hop latency between a
	// requesting core and a destination bank (used with mesh networks where
	// distance depends on placement).
	distanceFn func(coreID, bank int) uint32
}

// NewBanked creates a banked-cache router over the given banks.
func NewBanked(name string, banks []*Cache, netLatency uint32) *Banked {
	return &Banked{name: name, banks: banks, netLatency: netLatency}
}

// SetDistanceFunc installs a per-(core,bank) latency function, replacing the
// flat network latency for distance-dependent topologies (mesh).
func (b *Banked) SetDistanceFunc(f func(coreID, bank int) uint32) { b.distanceFn = f }

// Name returns the router's name.
func (b *Banked) Name() string { return b.name }

// NumBanks returns the number of banks.
func (b *Banked) NumBanks() int { return len(b.banks) }

// Bank returns bank i.
func (b *Banked) Bank(i int) *Cache { return b.banks[i] }

// BankOf returns the bank index that owns the line.
func (b *Banked) BankOf(lineAddr uint64) int {
	h := lineAddr * 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(len(b.banks)))
}

// Access routes the request to the owning bank, adding network latency. The
// request is forwarded in place (mutate Cycle, restore afterwards) so routing
// does not allocate.
func (b *Banked) Access(req *Request) uint64 {
	bank := b.BankOf(req.LineAddr)
	lat := b.netLatency
	if b.distanceFn != nil {
		lat = b.distanceFn(req.CoreID, bank)
	}
	savedCycle := req.Cycle
	req.Cycle += uint64(lat)
	avail := b.banks[bank].Access(req)
	req.Cycle = savedCycle
	// The response also crosses the network.
	return avail + uint64(lat)
}

// MemRouter routes requests that missed in the last-level cache to one of
// several memory controllers, selected by hashing the line address (channel
// interleaving).
type MemRouter struct {
	name  string
	ctrls []Level
	// netLatency models the path from the LLC bank to the memory controller.
	netLatency uint32
}

// NewMemRouter creates a router over the given memory controllers.
func NewMemRouter(name string, ctrls []Level, netLatency uint32) *MemRouter {
	return &MemRouter{name: name, ctrls: ctrls, netLatency: netLatency}
}

// Name returns the router's name.
func (m *MemRouter) Name() string { return m.name }

// NumControllers returns the number of memory controllers.
func (m *MemRouter) NumControllers() int { return len(m.ctrls) }

// CtrlOf returns the controller index that owns the line.
func (m *MemRouter) CtrlOf(lineAddr uint64) int {
	h := lineAddr*0xc2b2ae3d27d4eb4f + 0x165667b19e3779f9
	h ^= h >> 29
	return int(h % uint64(len(m.ctrls)))
}

// Access routes the request to the owning memory controller, forwarding the
// request in place.
func (m *MemRouter) Access(req *Request) uint64 {
	idx := m.CtrlOf(req.LineAddr)
	savedCycle := req.Cycle
	req.Cycle += uint64(m.netLatency)
	avail := m.ctrls[idx].Access(req)
	req.Cycle = savedCycle
	return avail + uint64(m.netLatency)
}
