package cache

// Routers connect hierarchy levels that are physically distributed: a banked
// shared cache (the L3 of the validated Westmere configuration and of the
// tiled thousand-core chip) and the set of memory controllers. Routers select
// the destination bank or controller by hashing the line address, and add the
// network's zero-load latency for the hop, which is how the bound phase
// accounts for the NoC (the paper argues zero-load latencies capture most of
// the impact for well-provisioned networks). When weave-phase NoC contention
// is enabled, both routers additionally record the traversal's topology nodes
// as network hops (HopNet / HopNetMem) on traced requests, which package
// boundweave expands into per-router contention events (package noc).

// Banked routes requests to one of several banks by hashing the line
// address. It implements Level and is used as the parent of the private cache
// levels.
type Banked struct {
	name  string
	banks []*Cache
	// netLatency is the zero-load network latency (cycles) added to every
	// access that crosses the interconnect to reach a bank.
	netLatency uint32
	// distanceFn, if non-nil, returns the extra per-hop latency between a
	// requesting core and a destination bank (used with mesh networks where
	// distance depends on placement).
	distanceFn func(coreID, bank int) uint32
	// netNodeFn, if non-nil, resolves a core->bank traversal to its (src, dst)
	// topology nodes; Access then records a HopNet hop on traced requests so
	// the weave phase can retime the route's router traversals (NoC
	// contention). Same-node traversals record nothing.
	netNodeFn func(coreID, bank int) (src, dst int)
}

// NewBanked creates a banked-cache router over the given banks.
func NewBanked(name string, banks []*Cache, netLatency uint32) *Banked {
	return &Banked{name: name, banks: banks, netLatency: netLatency}
}

// SetDistanceFunc installs a per-(core,bank) latency function, replacing the
// flat network latency for distance-dependent topologies (mesh).
func (b *Banked) SetDistanceFunc(f func(coreID, bank int) uint32) { b.distanceFn = f }

// SetNetNodeFunc installs the core->bank topology-node resolver that enables
// NoC hop recording on traced requests.
func (b *Banked) SetNetNodeFunc(f func(coreID, bank int) (src, dst int)) { b.netNodeFn = f }

// Name returns the router's name.
func (b *Banked) Name() string { return b.name }

// NumBanks returns the number of banks.
func (b *Banked) NumBanks() int { return len(b.banks) }

// Bank returns bank i.
func (b *Banked) Bank(i int) *Cache { return b.banks[i] }

// BankOf returns the bank index that owns the line.
func (b *Banked) BankOf(lineAddr uint64) int {
	h := lineAddr * 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(len(b.banks)))
}

// Access routes the request to the owning bank, adding network latency. The
// request is forwarded in place (mutate Cycle, restore afterwards) so routing
// does not allocate.
func (b *Banked) Access(req *Request) uint64 {
	bank := b.BankOf(req.LineAddr)
	lat := b.netLatency
	if b.distanceFn != nil {
		lat = b.distanceFn(req.CoreID, bank)
	}
	if b.netNodeFn != nil && req.RecordHops {
		if src, dst := b.netNodeFn(req.CoreID, bank); src != dst {
			req.addNetHop(HopNet, src, dst, req.Cycle, lat)
		}
	}
	savedCycle := req.Cycle
	req.Cycle += uint64(lat)
	avail := b.banks[bank].Access(req)
	req.Cycle = savedCycle
	// The response also crosses the network.
	return avail + uint64(lat)
}

// MemRouter routes requests that missed in the last-level cache to one of
// several memory controllers, selected by hashing the line address (channel
// interleaving).
type MemRouter struct {
	name  string
	ctrls []Level
	// netLatency models the path from the LLC bank to the memory controller.
	netLatency uint32
	// netNodeFn, if non-nil, resolves a request's LLC-to-controller traversal
	// to (src, dst) topology nodes — src is the node of the LLC bank owning
	// the line, dst the controller's home node. Access then records a
	// HopNetMem hop (the memory-egress link at src) on traced requests.
	netNodeFn func(lineAddr uint64, ctrl int) (src, dst int)
}

// NewMemRouter creates a router over the given memory controllers.
func NewMemRouter(name string, ctrls []Level, netLatency uint32) *MemRouter {
	return &MemRouter{name: name, ctrls: ctrls, netLatency: netLatency}
}

// Name returns the router's name.
func (m *MemRouter) Name() string { return m.name }

// SetNetNodeFunc installs the line->controller topology-node resolver that
// enables NoC hop recording on traced requests.
func (m *MemRouter) SetNetNodeFunc(f func(lineAddr uint64, ctrl int) (src, dst int)) {
	m.netNodeFn = f
}

// NumControllers returns the number of memory controllers.
func (m *MemRouter) NumControllers() int { return len(m.ctrls) }

// CtrlOf returns the controller index that owns the line.
func (m *MemRouter) CtrlOf(lineAddr uint64) int {
	h := lineAddr*0xc2b2ae3d27d4eb4f + 0x165667b19e3779f9
	h ^= h >> 29
	return int(h % uint64(len(m.ctrls)))
}

// Access routes the request to the owning memory controller, forwarding the
// request in place.
func (m *MemRouter) Access(req *Request) uint64 {
	idx := m.CtrlOf(req.LineAddr)
	if m.netNodeFn != nil && req.RecordHops {
		src, dst := m.netNodeFn(req.LineAddr, idx)
		req.addNetHop(HopNetMem, src, dst, req.Cycle, m.netLatency)
	}
	savedCycle := req.Cycle
	req.Cycle += uint64(m.netLatency)
	avail := m.ctrls[idx].Access(req)
	req.Cycle = savedCycle
	return avail + uint64(m.netLatency)
}
