package cache

import (
	"sync"
	"testing"
	"testing/quick"

	"zsim/internal/stats"
)

// fakeMem is a terminal level with a fixed latency, standing in for a memory
// controller in cache-only tests.
type fakeMem struct {
	lat      uint32
	mu       sync.Mutex
	accesses int
	writes   int
}

func (m *fakeMem) Access(req *Request) uint64 {
	m.mu.Lock()
	m.accesses++
	if req.Write {
		m.writes++
	}
	m.mu.Unlock()
	req.addHop(999, HopMem, req.Cycle, m.lat)
	return req.Cycle + uint64(m.lat)
}

func (m *fakeMem) Name() string { return "fakemem" }

// newL1 builds a small standalone L1 backed by fakeMem.
func newL1(sizeKB, ways int) (*Cache, *fakeMem) {
	mem := &fakeMem{lat: 100}
	l1 := New(Config{Name: "l1", SizeKB: sizeKB, Ways: ways, Latency: 4, MSHRs: 8}, 1, stats.NewRegistry("l1"))
	l1.SetParent(mem)
	return l1, mem
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0) != 0 || LineAddr(63) != 0 || LineAddr(64) != 1 || LineAddr(130) != 2 {
		t.Fatalf("LineAddr broken")
	}
}

func TestStateAndHopStrings(t *testing.T) {
	for _, s := range []State{Invalid, Shared, Exclusive, Modified} {
		if s.String() == "" {
			t.Fatalf("state %d has no name", s)
		}
	}
	if State(9).String() != "?9" {
		t.Fatalf("unknown state fallback")
	}
	for _, k := range []HopKind{HopHit, HopMiss, HopMem, HopWB, HopInval} {
		if k.String() == "" {
			t.Fatalf("hop kind %d has no name", k)
		}
	}
	if HopKind(9).String() != "hop(9)" {
		t.Fatalf("unknown hop fallback")
	}
}

func TestCacheColdMissThenHit(t *testing.T) {
	l1, mem := newL1(32, 8)
	req := &Request{LineAddr: 100, Cycle: 0}
	done := l1.Access(req)
	if done < 100 {
		t.Fatalf("cold miss should pay memory latency, finished at %d", done)
	}
	if l1.Misses.Get() != 1 || l1.Hits.Get() != 0 || mem.accesses != 1 {
		t.Fatalf("miss accounting wrong: misses=%d hits=%d mem=%d", l1.Misses.Get(), l1.Hits.Get(), mem.accesses)
	}
	done = l1.Access(&Request{LineAddr: 100, Cycle: 200})
	if done != 204 {
		t.Fatalf("hit should take the L1 latency (4), finished at %d", done)
	}
	if l1.Hits.Get() != 1 || mem.accesses != 1 {
		t.Fatalf("hit accounting wrong")
	}
	if l1.StateOf(100) != Exclusive {
		t.Fatalf("read-filled line should be Exclusive, got %v", l1.StateOf(100))
	}
}

func TestCacheWriteMakesModified(t *testing.T) {
	l1, _ := newL1(32, 8)
	l1.Access(&Request{LineAddr: 7, Write: true})
	if l1.StateOf(7) != Modified {
		t.Fatalf("written line should be Modified, got %v", l1.StateOf(7))
	}
	// Read then write: the write hit upgrades E -> M locally.
	l1.Access(&Request{LineAddr: 9})
	if l1.StateOf(9) != Exclusive {
		t.Fatalf("expected Exclusive")
	}
	l1.Access(&Request{LineAddr: 9, Write: true})
	if l1.StateOf(9) != Modified {
		t.Fatalf("write hit should upgrade to Modified")
	}
	if l1.Misses.Get() != 2 || l1.Hits.Get() != 1 {
		t.Fatalf("unexpected counts: misses=%d hits=%d", l1.Misses.Get(), l1.Hits.Get())
	}
}

func TestCacheCapacityEvictions(t *testing.T) {
	// 4 KB, 4-way => 64 lines. Touch 128 distinct lines: half must be evicted.
	l1, mem := newL1(4, 4)
	for i := uint64(0); i < 128; i++ {
		l1.Access(&Request{LineAddr: i})
	}
	if l1.Misses.Get() != 128 {
		t.Fatalf("all cold accesses should miss, got %d", l1.Misses.Get())
	}
	if l1.Evictions.Get() < 60 {
		t.Fatalf("expected ~64 evictions, got %d", l1.Evictions.Get())
	}
	if mem.accesses != 128 {
		t.Fatalf("memory should see every miss, got %d", mem.accesses)
	}
	// Clean evictions must not write back.
	if l1.Writebacks.Get() != 0 || mem.writes != 0 {
		t.Fatalf("clean evictions should not write back")
	}
}

func TestCacheDirtyEvictionWritesBack(t *testing.T) {
	l1, mem := newL1(4, 1) // direct-mapped, 64 lines
	// Write many distinct lines so dirty victims are evicted.
	for i := uint64(0); i < 256; i++ {
		l1.Access(&Request{LineAddr: i, Write: true})
	}
	if l1.Writebacks.Get() == 0 {
		t.Fatalf("dirty evictions should produce writebacks")
	}
	if mem.writes == 0 {
		t.Fatalf("writebacks should reach memory")
	}
}

func TestCacheLRUKeepsHotLine(t *testing.T) {
	// Direct conflict workload in one set with LRU: repeatedly touch the hot
	// line, cycle through others; the hot line should stay resident.
	l1, _ := newL1(4, 4)
	hot := uint64(1)
	l1.Access(&Request{LineAddr: hot})
	missesBefore := l1.Misses.Get()
	for rep := 0; rep < 50; rep++ {
		l1.Access(&Request{LineAddr: hot})
		// Touch a few cold lines (not enough to exceed the set's ways between
		// hot-line touches).
		l1.Access(&Request{LineAddr: uint64(1000 + rep)})
	}
	// The hot line itself should never miss again.
	hotMisses := uint64(0)
	if !l1.Contains(hot) {
		hotMisses++
	}
	_ = missesBefore
	if hotMisses != 0 {
		t.Fatalf("LRU should keep the hot line resident")
	}
}

func TestRandomReplacement(t *testing.T) {
	reg := stats.NewRegistry("r")
	c := New(Config{Name: "rand", SizeKB: 4, Ways: 4, Latency: 1, RandomRepl: true}, 2, reg)
	c.SetParent(&fakeMem{lat: 10})
	for i := uint64(0); i < 500; i++ {
		c.Access(&Request{LineAddr: i})
	}
	if c.Evictions.Get() == 0 {
		t.Fatalf("random replacement should still evict")
	}
}

func TestHopRecording(t *testing.T) {
	l1, _ := newL1(32, 8)
	req := &Request{LineAddr: 5, Cycle: 10, RecordHops: true}
	l1.Access(req)
	if len(req.Hops) < 2 {
		t.Fatalf("miss should record L1 and memory hops, got %v", req.Hops)
	}
	if req.Hops[0].Kind != HopMiss || req.Hops[0].Comp != 1 {
		t.Fatalf("first hop should be the L1 miss: %+v", req.Hops[0])
	}
	last := req.Hops[len(req.Hops)-1]
	if last.Kind != HopMem {
		t.Fatalf("last hop should be memory: %+v", last)
	}
	// A hit records a single hop.
	req2 := &Request{LineAddr: 5, Cycle: 200, RecordHops: true}
	l1.Access(req2)
	if len(req2.Hops) != 1 || req2.Hops[0].Kind != HopHit {
		t.Fatalf("hit should record one hit hop, got %v", req2.Hops)
	}
	// Without RecordHops nothing is recorded.
	req3 := &Request{LineAddr: 6}
	l1.Access(req3)
	if len(req3.Hops) != 0 {
		t.Fatalf("hops recorded without RecordHops")
	}
}

// buildTwoLevel builds 2 cores x (L1) -> shared L2 -> fakeMem, returning the
// L1s, the L2 and the memory.
func buildTwoLevel() (l1s []*Cache, l2 *Cache, mem *fakeMem) {
	mem = &fakeMem{lat: 100}
	l2 = New(Config{Name: "l2", SizeKB: 256, Ways: 8, Latency: 7}, 10, stats.NewRegistry("l2"))
	l2.SetParent(mem)
	for i := 0; i < 2; i++ {
		l1 := New(Config{Name: "l1", SizeKB: 32, Ways: 8, Latency: 4}, i, stats.NewRegistry("l1"))
		l1.SetParent(l2)
		l2.AddChild(l1)
		l1s = append(l1s, l1)
	}
	return
}

func TestCoherenceInvalidationOnWrite(t *testing.T) {
	l1s, l2, _ := buildTwoLevel()
	lineA := uint64(0x1000)

	// Core 0 reads the line, core 1 reads the line: both L1s hold it.
	l1s[0].Access(&Request{LineAddr: lineA, CoreID: 0})
	l1s[1].Access(&Request{LineAddr: lineA, CoreID: 1})
	if !l1s[0].Contains(lineA) || !l1s[1].Contains(lineA) {
		t.Fatalf("both L1s should hold the line after reads")
	}

	// Core 1 writes the line: core 0's copy must be invalidated via the L2
	// directory.
	l1s[1].Access(&Request{LineAddr: lineA, CoreID: 1, Write: true})
	if l1s[0].Contains(lineA) {
		t.Fatalf("core 0's copy should be invalidated by core 1's write")
	}
	if l1s[1].StateOf(lineA) != Modified {
		t.Fatalf("writer should hold the line Modified, got %v", l1s[1].StateOf(lineA))
	}
	if l1s[0].Invals.Get() == 0 {
		t.Fatalf("invalidation should be counted at the victim L1")
	}
	_ = l2
}

func TestInclusiveEvictionInvalidatesChildren(t *testing.T) {
	// Tiny L2 (direct-mapped, 4KB = 64 lines) with a larger L1 would violate
	// inclusion unless L2 evictions invalidate the L1 copy.
	mem := &fakeMem{lat: 100}
	l2 := New(Config{Name: "l2", SizeKB: 4, Ways: 1, Latency: 7}, 10, stats.NewRegistry("l2"))
	l2.SetParent(mem)
	l1 := New(Config{Name: "l1", SizeKB: 32, Ways: 8, Latency: 4}, 0, stats.NewRegistry("l1"))
	l1.SetParent(l2)
	l2.AddChild(l1)

	// Fill far more lines than the L2 holds.
	for i := uint64(0); i < 512; i++ {
		l1.Access(&Request{LineAddr: i})
	}
	// Inclusion: any line still in L1 must also be in L2.
	violations := 0
	for i := uint64(0); i < 512; i++ {
		if l1.Contains(i) && !l2.Contains(i) {
			violations++
		}
	}
	if violations != 0 {
		t.Fatalf("inclusion violated for %d lines", violations)
	}
	if l1.Invals.Get() == 0 {
		t.Fatalf("L2 evictions should have invalidated L1 copies")
	}
}

func TestDirtyChildWritebackOnParentEviction(t *testing.T) {
	mem := &fakeMem{lat: 100}
	l2 := New(Config{Name: "l2", SizeKB: 4, Ways: 1, Latency: 7}, 10, stats.NewRegistry("l2"))
	l2.SetParent(mem)
	l1 := New(Config{Name: "l1", SizeKB: 32, Ways: 8, Latency: 4}, 0, stats.NewRegistry("l1"))
	l1.SetParent(l2)
	l2.AddChild(l1)

	// Dirty a line in L1, then force it out of L2 via conflict misses.
	l1.Access(&Request{LineAddr: 1, Write: true})
	for i := uint64(100); i < 400; i++ {
		l1.Access(&Request{LineAddr: i})
	}
	if mem.writes == 0 {
		t.Fatalf("dirty data must eventually be written back to memory")
	}
}

func TestBankedRouting(t *testing.T) {
	mem := &fakeMem{lat: 100}
	reg := stats.NewRegistry("l3")
	var banks []*Cache
	for i := 0; i < 4; i++ {
		b := New(Config{Name: "l3b", SizeKB: 256, Ways: 16, Latency: 14}, 20+i, reg.Child("bank"))
		b.SetParent(mem)
		banks = append(banks, b)
	}
	l3 := NewBanked("l3", banks, 5)
	if l3.NumBanks() != 4 || l3.Name() != "l3" {
		t.Fatalf("banked setup wrong")
	}

	// The same line always routes to the same bank; different lines spread.
	seen := make(map[int]int)
	for i := uint64(0); i < 1000; i++ {
		b := l3.BankOf(i)
		if b != l3.BankOf(i) {
			t.Fatalf("bank routing must be deterministic")
		}
		seen[b]++
	}
	if len(seen) != 4 {
		t.Fatalf("lines should spread across all banks, got %v", seen)
	}
	for b, n := range seen {
		if n < 100 {
			t.Fatalf("bank %d underused: %d/1000", b, n)
		}
	}

	// Access adds network latency both ways: a miss in bank with mem latency
	// 100 and bank latency 14 plus 2*5 network >= 124.
	done := l3.Access(&Request{LineAddr: 42, Cycle: 0})
	if done < 124 {
		t.Fatalf("banked access should include network and bank latency, got %d", done)
	}
	// Now a hit.
	done = l3.Access(&Request{LineAddr: 42, Cycle: 1000})
	if done != 1000+5+14+5 {
		t.Fatalf("banked hit latency wrong: %d", done)
	}
}

func TestBankedDistanceFunc(t *testing.T) {
	mem := &fakeMem{lat: 0}
	b0 := New(Config{Name: "b0", SizeKB: 64, Ways: 4, Latency: 10}, 1, nil)
	b0.SetParent(mem)
	l3 := NewBanked("l3", []*Cache{b0}, 3)
	l3.SetDistanceFunc(func(coreID, bank int) uint32 { return uint32(7 * (coreID + 1)) })
	done := l3.Access(&Request{LineAddr: 1, Cycle: 0, CoreID: 1})
	// distance = 14 each way, bank hit-miss to mem lat 0 => 14 + 10 + 0 + 14
	if done != 38 {
		t.Fatalf("distance-based latency wrong: %d", done)
	}
}

func TestMemRouter(t *testing.T) {
	m0 := &fakeMem{lat: 50}
	m1 := &fakeMem{lat: 50}
	r := NewMemRouter("memrouter", []Level{m0, m1}, 10)
	if r.NumControllers() != 2 || r.Name() != "memrouter" {
		t.Fatalf("router setup wrong")
	}
	for i := uint64(0); i < 200; i++ {
		r.Access(&Request{LineAddr: i})
	}
	if m0.accesses == 0 || m1.accesses == 0 {
		t.Fatalf("requests should spread across controllers: %d/%d", m0.accesses, m1.accesses)
	}
	if m0.accesses+m1.accesses != 200 {
		t.Fatalf("every request must hit exactly one controller")
	}
	done := r.Access(&Request{LineAddr: 5, Cycle: 0})
	if done != 70 {
		t.Fatalf("router latency should be 10+50+10=70, got %d", done)
	}
}

type observerFunc struct {
	calls int
	last  uint64
}

func (o *observerFunc) ObserveAccess(lineAddr uint64, write bool, coreID int, cycle uint64) {
	o.calls++
	o.last = lineAddr
}

func TestAccessObserverCalledOnce(t *testing.T) {
	l1s, _, _ := buildTwoLevel()
	obs := &observerFunc{}
	l1s[0].Access(&Request{LineAddr: 77, Prof: obs})
	if obs.calls != 1 || obs.last != 77 {
		t.Fatalf("observer should be called exactly once at the first level: %+v", obs)
	}
}

func TestConcurrentAccessesNoDeadlock(t *testing.T) {
	// 8 L1s sharing an L2, hammered concurrently with overlapping lines.
	mem := &fakeMem{lat: 100}
	l2 := New(Config{Name: "l2", SizeKB: 64, Ways: 8, Latency: 7}, 10, stats.NewRegistry("l2"))
	l2.SetParent(mem)
	var l1s []*Cache
	for i := 0; i < 8; i++ {
		l1 := New(Config{Name: "l1", SizeKB: 8, Ways: 4, Latency: 4}, i, stats.NewRegistry("l1"))
		l1.SetParent(l2)
		l2.AddChild(l1)
		l1s = append(l1s, l1)
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(core int) {
			defer wg.Done()
			rng := uint64(core + 1)
			for i := 0; i < 5000; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				line := rng % 512 // heavy sharing across cores
				write := rng&3 == 0
				l1s[core].Access(&Request{LineAddr: line, Write: write, CoreID: core})
			}
		}(c)
	}
	wg.Wait()
	var hits, misses uint64
	for _, l1 := range l1s {
		hits += l1.Hits.Get()
		misses += l1.Misses.Get()
	}
	if hits+misses != 8*5000 {
		t.Fatalf("every access must be either a hit or a miss: %d + %d != %d", hits, misses, 8*5000)
	}
}

// Property: for a single cache, hits + misses always equals the number of
// accesses, and the number of resident lines never exceeds capacity.
func TestCacheAccountingInvariant(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		l1, _ := newL1(4, 2)
		n := len(addrs)
		if len(writes) < n {
			n = len(writes)
		}
		for i := 0; i < n; i++ {
			l1.Access(&Request{LineAddr: uint64(addrs[i] % 512), Write: writes[i]})
		}
		if l1.Hits.Get()+l1.Misses.Get() != uint64(n) {
			return false
		}
		resident := 0
		for a := uint64(0); a < 512; a++ {
			if l1.Contains(a) {
				resident++
			}
		}
		return resident <= l1.NumLines()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: single-writer invariant — after any sequence of reads and writes
// from two cores, a line Modified in one L1 is never present in the other.
func TestCoherenceSingleWriterInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		l1s, _, _ := buildTwoLevel()
		for _, op := range ops {
			core := int(op & 1)
			write := op&2 != 0
			line := uint64((op >> 2) % 8) // few lines -> heavy conflicts
			l1s[core].Access(&Request{LineAddr: line, Write: write, CoreID: core})
		}
		for lineA := uint64(0); lineA < 8; lineA++ {
			m0 := l1s[0].StateOf(lineA) == Modified
			m1 := l1s[1].StateOf(lineA) == Modified
			p0 := l1s[0].Contains(lineA)
			p1 := l1s[1].Contains(lineA)
			if m0 && p1 {
				return false
			}
			if m1 && p0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
