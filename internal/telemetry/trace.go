package telemetry

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// TraceSink collects bounded Chrome trace-event slices from a run for loading
// into Perfetto (chrome://tracing JSON array format). The simulation side
// calls Add from whatever goroutine executes the slice — bound/weave phase
// slices from the driver, per-domain execution and stall slices from weave
// workers — and the sink assigns each slot with a single atomic increment, so
// recording is lock-free and allocation-free after construction. Once the
// fixed capacity is exhausted further events are counted as dropped rather
// than grown: a runaway run can never turn the trace into a memory leak.
//
// Tracks (tid values in the export):
//
//	0        the driver's phase track (bound/weave slices per interval)
//	1+d      weave domain d's track (event execution and horizon-stall slices)
type TraceSink struct {
	events  []traceEvent
	next    atomic.Int64
	dropped atomic.Int64
}

type traceEvent struct {
	track    int32
	name     string
	startUS  int64 // microseconds since Unix epoch (Chrome "ts" clock)
	durUS    int64
	interval uint64 // slice argument: interval number or event count
}

// Track identifiers for Add. TrackPhases is the driver's bound/weave track;
// TrackDomain(d) is weave domain d's track.
const TrackPhases int32 = 0

// TrackDomain returns the track id for weave domain d.
func TrackDomain(d int) int32 { return int32(1 + d) }

// MaxTraceEvents is the default (and maximum) sink capacity.
const MaxTraceEvents = 1 << 16

// NewTraceSink builds a sink holding at most capacity events
// (MaxTraceEvents when capacity <= 0; clamped to MaxTraceEvents above it).
func NewTraceSink(capacity int) *TraceSink {
	if capacity <= 0 || capacity > MaxTraceEvents {
		capacity = MaxTraceEvents
	}
	return &TraceSink{events: make([]traceEvent, capacity)}
}

// Add records one complete slice on a track. name must be a static string
// (it is stored, not copied). arg lands in the event's args block — the
// interval number for phase slices, the executed-event count for domain
// slices. Nil-safe; drops (and counts) events past capacity.
func (t *TraceSink) Add(track int32, name string, start time.Time, dur time.Duration, arg uint64) {
	if t == nil {
		return
	}
	i := t.next.Add(1) - 1
	if i >= int64(len(t.events)) {
		t.dropped.Add(1)
		return
	}
	t.events[i] = traceEvent{
		track:    track,
		name:     name,
		startUS:  start.UnixMicro(),
		durUS:    int64(dur / time.Microsecond),
		interval: arg,
	}
}

// Len returns the number of recorded (non-dropped) events.
func (t *TraceSink) Len() int {
	if t == nil {
		return 0
	}
	n := t.next.Load()
	if n > int64(len(t.events)) {
		n = int64(len(t.events))
	}
	return int(n)
}

// Dropped returns the number of events discarded after capacity was reached.
func (t *TraceSink) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Reset discards all recorded events, keeping capacity.
func (t *TraceSink) Reset() {
	if t == nil {
		return
	}
	t.next.Store(0)
	t.dropped.Store(0)
}

// WriteJSON emits the trace as a Chrome trace-event JSON array: one "M"
// (metadata) event naming each track, then one "X" (complete) event per
// slice. The output loads directly in Perfetto / chrome://tracing. Call
// after the run finishes (concurrent Add during WriteJSON may be missed,
// never corrupts).
func (t *TraceSink) WriteJSON(w io.Writer) error {
	n := t.Len()
	// Collect the set of tracks present so each gets a thread_name record.
	maxTrack := int32(0)
	for i := 0; i < n; i++ {
		if t.events[i].track > maxTrack {
			maxTrack = t.events[i].track
		}
	}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	for tr := int32(0); tr <= maxTrack; tr++ {
		name := "phases"
		if tr > 0 {
			name = fmt.Sprintf("domain %d", tr-1)
		}
		if err := emit(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%q}}`, tr, name); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		ev := &t.events[i]
		if err := emit(`{"ph":"X","pid":1,"tid":%d,"name":%q,"ts":%d,"dur":%d,"args":{"n":%d}}`,
			ev.track, ev.name, ev.startUS, ev.durUS, ev.interval); err != nil {
			return err
		}
	}
	if dropped := t.Dropped(); dropped > 0 {
		if err := emit(`{"ph":"M","pid":1,"tid":0,"name":"process_labels","args":{"labels":"dropped %d events at capacity"}}`, dropped); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}
