package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestProbePublishSnapshotRoundTrip(t *testing.T) {
	p := new(Probe)
	s := Sample{
		Intervals: 7, BoundRounds: 9, Cycles: 71680, Instrs: 123456, WeaveEvents: 42,
		BoundNanos: 1111, WeaveNanos: 2222,
		HorizonParks: 3, DomainWakes: 4, StallNanos: 5555, CrossHandoffs: 6,
		PoolRuns: 14, PoolWakes: 28, PoolWorkers: 4,
		LiveThreads: 8, RunnableThreads: 6,
	}
	p.SetPhase(PhaseWeave)
	p.Publish(s)
	snap := p.Snapshot()
	if snap.Phase != "weave" {
		t.Errorf("phase = %q, want weave", snap.Phase)
	}
	if snap.Intervals != s.Intervals || snap.BoundRounds != s.BoundRounds ||
		snap.Cycles != s.Cycles || snap.Instrs != s.Instrs || snap.WeaveEvents != s.WeaveEvents {
		t.Errorf("progress counters did not round-trip: %+v", snap)
	}
	if snap.BoundNanos != s.BoundNanos || snap.WeaveNanos != s.WeaveNanos || snap.StallNanos != s.StallNanos {
		t.Errorf("nanos did not round-trip: %+v", snap)
	}
	if snap.HorizonParks != s.HorizonParks || snap.DomainWakes != s.DomainWakes || snap.CrossHandoffs != s.CrossHandoffs {
		t.Errorf("weave diagnostics did not round-trip: %+v", snap)
	}
	if snap.PoolRuns != s.PoolRuns || snap.PoolWakes != s.PoolWakes || snap.PoolWorkers != s.PoolWorkers {
		t.Errorf("pool counters did not round-trip: %+v", snap)
	}
	if snap.LiveThreads != s.LiveThreads || snap.RunnableThreads != s.RunnableThreads {
		t.Errorf("scheduler gauges did not round-trip: %+v", snap)
	}
}

func TestProbeBeginRunRewinds(t *testing.T) {
	p := new(Probe)
	p.Publish(Sample{Intervals: 99, Cycles: 12345, Instrs: 777})
	p.SetPhase(PhaseDone)

	p.BeginRun(1000)
	snap := p.Snapshot()
	if snap.Intervals != 0 || snap.Cycles != 0 || snap.Instrs != 0 {
		t.Errorf("BeginRun did not rewind counters: %+v", snap)
	}
	if snap.Phase != "bound" {
		t.Errorf("phase after BeginRun = %q, want bound", snap.Phase)
	}
	if snap.StartNanos == 0 {
		t.Error("BeginRun did not record a start time")
	}
	if snap.MaxCycles != 1000 {
		t.Errorf("MaxCycles = %d, want 1000", snap.MaxCycles)
	}
}

func TestNilProbeIsSafe(t *testing.T) {
	var p *Probe
	p.BeginRun(10)
	p.SetPhase(PhaseBound)
	p.Publish(Sample{Intervals: 1})
	p.Reset()
	if snap := p.Snapshot(); snap.Phase != "idle" || snap.Intervals != 0 {
		t.Errorf("nil probe snapshot = %+v, want idle zero", snap)
	}
}

func TestSnapshotDerived(t *testing.T) {
	s := Snapshot{StartNanos: 1_000_000_000, Instrs: 2_000_000, Cycles: 50, MaxCycles: 200}
	// 1 second elapsed, 2M instructions -> 2 MIPS.
	if got := s.SimMIPS(2_000_000_000); got < 1.99 || got > 2.01 {
		t.Errorf("SimMIPS = %v, want ~2", got)
	}
	if got := s.SimMIPS(500_000_000); got != 0 {
		t.Errorf("SimMIPS before start = %v, want 0", got)
	}
	if got := s.PctMaxCycles(); got != 25 {
		t.Errorf("PctMaxCycles = %v, want 25", got)
	}
	if got := (Snapshot{Cycles: 50}).PctMaxCycles(); got != 0 {
		t.Errorf("PctMaxCycles without budget = %v, want 0", got)
	}
}

func TestTotalsAdd(t *testing.T) {
	var tot Totals
	tot.Add(Snapshot{Intervals: 3, Cycles: 30, Instrs: 300, BoundNanos: 10, PoolRuns: 5})
	tot.Add(Snapshot{Intervals: 4, Cycles: 40, Instrs: 400, BoundNanos: 20, PoolRuns: 7})
	if tot.Intervals != 7 || tot.Cycles != 70 || tot.Instrs != 700 || tot.BoundNanos != 30 || tot.PoolRuns != 12 {
		t.Errorf("Totals = %+v", tot)
	}
}

func TestHeartbeatEmitsFinalLine(t *testing.T) {
	var buf bytes.Buffer
	p := new(Probe)
	p.BeginRun(0)
	p.Publish(Sample{Intervals: 5, Cycles: 51200, Instrs: 1000, LiveThreads: 4, RunnableThreads: 2})
	// A period far longer than the test: only the stop-time line can appear.
	stop := StartHeartbeat(&buf, p, "test: ", time.Hour)
	stop()
	stop() // idempotent
	out := buf.String()
	if got := strings.Count(out, "\n"); got != 1 {
		t.Fatalf("want exactly 1 heartbeat line, got %d: %q", got, out)
	}
	for _, want := range []string{"test: progress:", "phase=bound", "intervals=5", "cycles=51200", "instrs=1000", "threads=2/4", "(done)"} {
		if !strings.Contains(out, want) {
			t.Errorf("heartbeat line missing %q: %q", want, out)
		}
	}
}

func TestHeartbeatPeriodic(t *testing.T) {
	var buf safeBuffer
	p := new(Probe)
	p.BeginRun(0)
	stop := StartHeartbeat(&buf, p, "", 5*time.Millisecond)
	time.Sleep(60 * time.Millisecond)
	stop()
	if got := strings.Count(buf.String(), "\n"); got < 2 {
		t.Errorf("want >= 2 heartbeat lines over 60ms at 5ms period, got %d", got)
	}
}

func TestPromWriterExposition(t *testing.T) {
	var buf bytes.Buffer
	pw := NewPromWriter(&buf)
	pw.Family("zsim_test_total", "counter", "A counter with a \"quoted\"\nhelp string.")
	pw.UintSample("zsim_test_total", []Label{{"kind", `a"b\c` + "\nd"}}, 42)
	pw.Sample("zsim_test_gauge", nil, 1.5)
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantLines := []string{
		`# HELP zsim_test_total A counter with a "quoted"\nhelp string.`,
		`# TYPE zsim_test_total counter`,
		`zsim_test_total{kind="a\"b\\c\nd"} 42`,
		`zsim_test_gauge 1.5`,
	}
	gotLines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(gotLines) != len(wantLines) {
		t.Fatalf("got %d lines, want %d:\n%s", len(gotLines), len(wantLines), out)
	}
	for i, want := range wantLines {
		if gotLines[i] != want {
			t.Errorf("line %d = %q, want %q", i, gotLines[i], want)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	// All values and bounds are exactly representable in binary so the _sum
	// line has one exact rendering.
	h := NewHistogram([]float64{0.125, 1, 10})
	for _, v := range []float64{0.0625, 0.125, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	var buf bytes.Buffer
	pw := NewPromWriter(&buf)
	h.Write(pw, "lat", []Label{{"outcome", "ok"}})
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Cumulative buckets: <=0.125 holds 0.0625 and 0.125; <=1 adds 0.5;
	// <=10 adds 2; +Inf adds 100.
	for _, want := range []string{
		`lat_bucket{outcome="ok",le="0.125"} 2`,
		`lat_bucket{outcome="ok",le="1"} 3`,
		`lat_bucket{outcome="ok",le="10"} 4`,
		`lat_bucket{outcome="ok",le="+Inf"} 5`,
		`lat_sum{outcome="ok"} 102.6875`,
		`lat_count{outcome="ok"} 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestTraceSinkCapAndExport(t *testing.T) {
	sink := NewTraceSink(4)
	base := time.Unix(100, 0)
	for i := 0; i < 6; i++ {
		sink.Add(TrackPhases, "bound", base.Add(time.Duration(i)*time.Millisecond), time.Millisecond, uint64(i))
	}
	sink.Add(TrackDomain(2), "weave", base, time.Microsecond, 9) // dropped too
	if sink.Len() != 4 {
		t.Errorf("Len = %d, want 4", sink.Len())
	}
	if sink.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", sink.Dropped())
	}

	var buf bytes.Buffer
	if err := sink.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace export is not valid JSON: %v\n%s", err, buf.String())
	}
	var slices, meta int
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			slices++
			if ev["name"] != "bound" {
				t.Errorf("slice name = %v", ev["name"])
			}
		case "M":
			meta++
		}
	}
	if slices != 4 {
		t.Errorf("exported %d slices, want 4", slices)
	}
	if meta == 0 {
		t.Error("no metadata events (thread names / dropped marker)")
	}

	sink.Reset()
	if sink.Len() != 0 || sink.Dropped() != 0 {
		t.Errorf("Reset left Len=%d Dropped=%d", sink.Len(), sink.Dropped())
	}
}

func TestTraceSinkNilSafe(t *testing.T) {
	var sink *TraceSink
	sink.Add(TrackPhases, "bound", time.Now(), time.Millisecond, 1)
	if sink.Len() != 0 || sink.Dropped() != 0 {
		t.Error("nil sink should read as empty")
	}
}

func TestPhaseName(t *testing.T) {
	cases := map[uint32]string{PhaseIdle: "idle", PhaseBound: "bound", PhaseWeave: "weave", PhaseDone: "done", 99: "idle"}
	for ph, want := range cases {
		if got := PhaseName(ph); got != want {
			t.Errorf("PhaseName(%d) = %q, want %q", ph, got, want)
		}
	}
}

// safeBuffer serializes Writes from the heartbeat goroutine with reads from
// the test goroutine.
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
