package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is a minimal hand-rolled Prometheus text-exposition writer (the
// classic text format, version 0.0.4). The repo takes no dependencies, and the
// subset zsimd needs — counters, gauges, and fixed-bucket histograms with a
// handful of labels — is a few dozen lines, so the format is written directly
// rather than pulled in via client_golang.

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// PromWriter accumulates one exposition document. Families must be declared
// (Help) before their samples; samples are emitted in call order, which the
// format allows as long as each family's samples are contiguous.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (pw *PromWriter) Err() error { return pw.err }

func (pw *PromWriter) printf(format string, args ...any) {
	if pw.err != nil {
		return
	}
	_, pw.err = fmt.Fprintf(pw.w, format, args...)
}

// Family emits the # HELP / # TYPE header for a metric family. typ is
// "counter", "gauge", or "histogram".
func (pw *PromWriter) Family(name, typ, help string) {
	pw.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample emits one sample line: name{labels} value.
func (pw *PromWriter) Sample(name string, labels []Label, value float64) {
	pw.printf("%s%s %s\n", name, formatLabels(labels), formatFloat(value))
}

// UintSample emits one sample line with an integer value (exact, no float
// round-trip).
func (pw *PromWriter) UintSample(name string, labels []Label, value uint64) {
	pw.printf("%s%s %d\n", name, formatLabels(labels), value)
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// DefaultLatencyBuckets covers job latencies from 1 ms to 60 s; jobs beyond a
// minute land in +Inf. Bounds are in seconds, ascending.
var DefaultLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket latency histogram, safe for concurrent Observe
// and Write. Observations are in seconds.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, excluding +Inf
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    float64
	total  uint64
}

// NewHistogram builds a histogram over the given ascending bucket bounds
// (DefaultLatencyBuckets when nil).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Write emits the histogram's _bucket/_sum/_count samples under name with the
// given base labels (the "le" label is appended per bucket).
func (h *Histogram) Write(pw *PromWriter, name string, labels []Label) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()

	lbls := make([]Label, len(labels), len(labels)+1)
	copy(lbls, labels)
	var cum uint64
	for i, bound := range h.bounds {
		cum += counts[i]
		pw.UintSample(name+"_bucket", append(lbls, Label{"le", formatFloat(bound)}), cum)
	}
	cum += counts[len(h.bounds)]
	pw.UintSample(name+"_bucket", append(lbls, Label{"le", "+Inf"}), cum)
	pw.Sample(name+"_sum", labels, sum)
	pw.UintSample(name+"_count", labels, total)
}
