package telemetry

import "sort"

// Quantile returns the q-quantile (0 <= q <= 1) of samples by linear
// interpolation between closest ranks. The input need not be sorted; it is
// not modified. Returns 0 for an empty slice.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile over an already ascending-sorted slice, without
// copying. Callers aggregating many quantiles over one sample set should sort
// once and use this.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	// Linear interpolation between closest ranks (the "R-7" estimate used by
	// numpy's default percentile).
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}
