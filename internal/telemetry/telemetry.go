// Package telemetry is the simulator's observability layer: a zero-allocation
// per-simulator probe whose counters are published at interval boundaries, a
// hand-rolled Prometheus text-exposition writer (no dependencies), a bounded
// Chrome-trace-event sink for weave skew/stall diagnosis, and a heartbeat
// printer for CLI progress lines.
//
// The cardinal rule of the package is that observation never perturbs the
// simulation: probes and trace sinks only record wall-clock time and counter
// values that are pure functions of work already done, so fixed-seed results
// are bit-identical with telemetry enabled or disabled, and every update on
// the simulation side is a handful of atomic stores at an interval boundary —
// no locks, no allocation, no channel traffic on the hot path.
package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// The phases a running simulation can be observed in.
const (
	PhaseIdle uint32 = iota
	PhaseBound
	PhaseWeave
	PhaseDone
)

// PhaseName returns the wire name of a phase code.
func PhaseName(ph uint32) string {
	switch ph {
	case PhaseBound:
		return "bound"
	case PhaseWeave:
		return "weave"
	case PhaseDone:
		return "done"
	default:
		return "idle"
	}
}

// Sample is one interval boundary's worth of counter values, produced by the
// bound-weave driver and stored into a Probe. All values are absolute (the
// run's running totals), not deltas, so a missed publication can never skew a
// reader. It is passed by value: publishing allocates nothing.
type Sample struct {
	Intervals   uint64
	BoundRounds uint64
	Cycles      uint64
	Instrs      uint64
	WeaveEvents uint64

	// Per-phase wall time spent in the bound and weave phases (host ns).
	BoundNanos int64
	WeaveNanos int64

	// Parallel-weave skew diagnostics: domain worker parks waiting for a
	// sending domain's horizon, wakeups delivered to parked workers, total
	// host time spent parked, and inter-domain event handoffs.
	HorizonParks  uint64
	DomainWakes   uint64
	StallNanos    int64
	CrossHandoffs uint64

	// Worker-pool churn: phase launches on the shared pool and the total
	// worker wakeups they delivered, plus the worker count of the most recent
	// bound round (occupancy gauge).
	PoolRuns    uint64
	PoolWakes   uint64
	PoolWorkers int

	// Scheduler gauges from the virtualization layer.
	LiveThreads     int
	RunnableThreads int
}

// Probe is the per-simulator telemetry publication point. The simulation side
// stores a Sample into it at every interval boundary (atomic stores only);
// readers — HTTP handlers, heartbeat printers — take a Snapshot at any time
// without touching the simulation. Every field is an individual atomic, so a
// snapshot is a consistent-enough view for monitoring (each counter is
// internally exact and monotone within a run) while staying race-free and
// allocation-free in both directions.
//
// A Probe observes one run at a time: BeginRun rewinds it, so a warm-reused
// simulator starts its next job from zero. The zero value is ready to use.
type Probe struct {
	phase      atomic.Uint32
	startNanos atomic.Int64
	maxCycles  atomic.Uint64

	intervals   atomic.Uint64
	boundRounds atomic.Uint64
	cycles      atomic.Uint64
	instrs      atomic.Uint64
	weaveEvents atomic.Uint64

	boundNanos atomic.Int64
	weaveNanos atomic.Int64

	horizonParks  atomic.Uint64
	domainWakes   atomic.Uint64
	stallNanos    atomic.Int64
	crossHandoffs atomic.Uint64

	poolRuns    atomic.Uint64
	poolWakes   atomic.Uint64
	poolWorkers atomic.Int64

	liveThreads     atomic.Int64
	runnableThreads atomic.Int64
}

// BeginRun rewinds the probe for a new run and records its start time and
// cycle budget (0 = unlimited). Called by the bound-weave driver when Run
// starts, so a reused simulator's probe never leaks the previous job's
// numbers into the next one.
func (p *Probe) BeginRun(maxCycles uint64) {
	if p == nil {
		return
	}
	p.Reset()
	p.startNanos.Store(time.Now().UnixNano())
	p.maxCycles.Store(maxCycles)
	p.phase.Store(PhaseBound)
}

// Reset zeroes every counter and gauge. Nil-safe.
func (p *Probe) Reset() {
	if p == nil {
		return
	}
	p.phase.Store(PhaseIdle)
	p.startNanos.Store(0)
	p.maxCycles.Store(0)
	p.intervals.Store(0)
	p.boundRounds.Store(0)
	p.cycles.Store(0)
	p.instrs.Store(0)
	p.weaveEvents.Store(0)
	p.boundNanos.Store(0)
	p.weaveNanos.Store(0)
	p.horizonParks.Store(0)
	p.domainWakes.Store(0)
	p.stallNanos.Store(0)
	p.crossHandoffs.Store(0)
	p.poolRuns.Store(0)
	p.poolWakes.Store(0)
	p.poolWorkers.Store(0)
	p.liveThreads.Store(0)
	p.runnableThreads.Store(0)
}

// SetPhase publishes the currently executing phase. Nil-safe, one atomic
// store.
func (p *Probe) SetPhase(ph uint32) {
	if p == nil {
		return
	}
	p.phase.Store(ph)
}

// Publish stores one interval boundary's sample. Nil-safe; performs only
// atomic stores, so the steady-state interval loop stays allocation-free with
// a probe attached.
func (p *Probe) Publish(s Sample) {
	if p == nil {
		return
	}
	p.intervals.Store(s.Intervals)
	p.boundRounds.Store(s.BoundRounds)
	p.cycles.Store(s.Cycles)
	p.instrs.Store(s.Instrs)
	p.weaveEvents.Store(s.WeaveEvents)
	p.boundNanos.Store(s.BoundNanos)
	p.weaveNanos.Store(s.WeaveNanos)
	p.horizonParks.Store(s.HorizonParks)
	p.domainWakes.Store(s.DomainWakes)
	p.stallNanos.Store(s.StallNanos)
	p.crossHandoffs.Store(s.CrossHandoffs)
	p.poolRuns.Store(s.PoolRuns)
	p.poolWakes.Store(s.PoolWakes)
	p.poolWorkers.Store(int64(s.PoolWorkers))
	p.liveThreads.Store(int64(s.LiveThreads))
	p.runnableThreads.Store(int64(s.RunnableThreads))
}

// Snapshot is a point-in-time copy of a probe's published state, safe to hold
// and serialize without further synchronization.
type Snapshot struct {
	Phase      string `json:"phase"`
	StartNanos int64  `json:"-"`
	MaxCycles  uint64 `json:"-"`

	Intervals   uint64 `json:"intervals"`
	BoundRounds uint64 `json:"boundRounds"`
	Cycles      uint64 `json:"cycles"`
	Instrs      uint64 `json:"instrs"`
	WeaveEvents uint64 `json:"weaveEvents"`

	BoundNanos int64 `json:"boundNanos"`
	WeaveNanos int64 `json:"weaveNanos"`

	HorizonParks  uint64 `json:"horizonParks,omitempty"`
	DomainWakes   uint64 `json:"domainWakes,omitempty"`
	StallNanos    int64  `json:"stallNanos,omitempty"`
	CrossHandoffs uint64 `json:"crossHandoffs,omitempty"`

	PoolRuns    uint64 `json:"poolRuns,omitempty"`
	PoolWakes   uint64 `json:"poolWakes,omitempty"`
	PoolWorkers int    `json:"poolWorkers,omitempty"`

	LiveThreads     int `json:"liveThreads"`
	RunnableThreads int `json:"runnableThreads"`
}

// Snapshot copies the probe's current state. Nil-safe (a nil probe reads as
// an idle, all-zero snapshot).
func (p *Probe) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{Phase: PhaseName(PhaseIdle)}
	}
	return Snapshot{
		Phase:           PhaseName(p.phase.Load()),
		StartNanos:      p.startNanos.Load(),
		MaxCycles:       p.maxCycles.Load(),
		Intervals:       p.intervals.Load(),
		BoundRounds:     p.boundRounds.Load(),
		Cycles:          p.cycles.Load(),
		Instrs:          p.instrs.Load(),
		WeaveEvents:     p.weaveEvents.Load(),
		BoundNanos:      p.boundNanos.Load(),
		WeaveNanos:      p.weaveNanos.Load(),
		HorizonParks:    p.horizonParks.Load(),
		DomainWakes:     p.domainWakes.Load(),
		StallNanos:      p.stallNanos.Load(),
		CrossHandoffs:   p.crossHandoffs.Load(),
		PoolRuns:        p.poolRuns.Load(),
		PoolWakes:       p.poolWakes.Load(),
		PoolWorkers:     int(p.poolWorkers.Load()),
		LiveThreads:     int(p.liveThreads.Load()),
		RunnableThreads: int(p.runnableThreads.Load()),
	}
}

// SimMIPS returns the run's simulation rate (simulated MIPS) as of nowNanos.
func (s Snapshot) SimMIPS(nowNanos int64) float64 {
	if s.StartNanos == 0 || nowNanos <= s.StartNanos {
		return 0
	}
	return float64(s.Instrs) / (float64(nowNanos-s.StartNanos) / 1e9) / 1e6
}

// PctMaxCycles returns simulated progress toward the run's cycle budget in
// percent (0 when no budget is set).
func (s Snapshot) PctMaxCycles() float64 {
	if s.MaxCycles == 0 {
		return 0
	}
	return 100 * float64(s.Cycles) / float64(s.MaxCycles)
}

// Totals accumulates snapshots across runs/jobs: the service layer adds each
// finished job's final snapshot here and sums live jobs' snapshots on top at
// scrape time, so the exported engine counters are monotone across the
// daemon's lifetime.
type Totals struct {
	Intervals, BoundRounds, Cycles, Instrs, WeaveEvents uint64
	BoundNanos, WeaveNanos, StallNanos                  int64
	HorizonParks, DomainWakes, CrossHandoffs            uint64
	PoolRuns, PoolWakes                                 uint64
}

// Add accumulates one snapshot.
func (t *Totals) Add(s Snapshot) {
	t.Intervals += s.Intervals
	t.BoundRounds += s.BoundRounds
	t.Cycles += s.Cycles
	t.Instrs += s.Instrs
	t.WeaveEvents += s.WeaveEvents
	t.BoundNanos += s.BoundNanos
	t.WeaveNanos += s.WeaveNanos
	t.StallNanos += s.StallNanos
	t.HorizonParks += s.HorizonParks
	t.DomainWakes += s.DomainWakes
	t.CrossHandoffs += s.CrossHandoffs
	t.PoolRuns += s.PoolRuns
	t.PoolWakes += s.PoolWakes
}

// StartHeartbeat spawns a goroutine that prints one progress line to w every
// period, reading the probe's published snapshots, and returns a stop
// function. Stop is idempotent; the first call halts the ticker and prints a
// final line marked "done", so even a run that finishes inside the first
// period emits at least one heartbeat. Lines look like:
//
//	<prefix>progress: phase=bound intervals=42 cycles=430080 instrs=1234567 sim-MIPS=12.3 threads=6/8
//
// with "pct-max-cycles=NN.N%" appended when the run has a cycle budget.
func StartHeartbeat(w io.Writer, p *Probe, prefix string, period time.Duration) (stop func()) {
	if period <= 0 {
		period = time.Second
	}
	ticker := time.NewTicker(period)
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ticker.C:
				writeHeartbeat(w, p.Snapshot(), prefix, false)
			case <-quit:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			ticker.Stop()
			close(quit)
			<-done
			writeHeartbeat(w, p.Snapshot(), prefix, true)
		})
	}
}

// writeHeartbeat formats one progress line as a single Write.
func writeHeartbeat(w io.Writer, s Snapshot, prefix string, final bool) {
	line := fmt.Sprintf("%sprogress: phase=%s intervals=%d cycles=%d instrs=%d sim-MIPS=%.1f threads=%d/%d",
		prefix, s.Phase, s.Intervals, s.Cycles, s.Instrs,
		s.SimMIPS(time.Now().UnixNano()), s.RunnableThreads, s.LiveThreads)
	if s.MaxCycles > 0 {
		line += fmt.Sprintf(" pct-max-cycles=%.1f%%", s.PctMaxCycles())
	}
	if final {
		line += " (done)"
	}
	fmt.Fprintln(w, line)
}
