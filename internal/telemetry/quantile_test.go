package telemetry

import (
	"math"
	"testing"
)

func TestQuantile(t *testing.T) {
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	one := []float64{42}
	for _, q := range []float64{0, 0.5, 1} {
		if got := Quantile(one, q); got != 42 {
			t.Fatalf("single-sample q=%v = %v", q, got)
		}
	}
	// Unsorted input; Quantile must not mutate it.
	samples := []float64{5, 1, 4, 2, 3}
	if got := Quantile(samples, 0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	if samples[0] != 5 {
		t.Fatalf("input mutated: %v", samples)
	}
	if got := Quantile(samples, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(samples, 1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	// Interpolation: p75 of [1..4] = 3.25 (R-7).
	if got := Quantile([]float64{1, 2, 3, 4}, 0.75); math.Abs(got-3.25) > 1e-12 {
		t.Fatalf("p75 = %v, want 3.25", got)
	}
	// Quantiles are monotone in q.
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := Quantile(samples, q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}
